"""Hierarchical span tracing for the four-phase pipeline.

A :class:`Tracer` records **spans** — named, nested wall-time intervals —
around the pipeline's instrumented operations.  Each span carries:

* its position in the hierarchy (``parent_id``/``span_id``, depth);
* wall time (``duration``) and **self time** (duration minus the time
  spent in child spans);
* the delta of the shared :class:`~repro.obs.metrics.AnalysisCounters`
  across the span, so a ``phase3.closure.specify`` span shows exactly how
  many propagation steps that one assertion cost; and
* free-form attributes supplied at the call site.

Instrumented code calls the module-level :func:`span` function::

    from repro.obs.trace import span

    with span("phase2.ocs.recompute", counters=self.counters):
        ...

When no tracer is installed (the default) :func:`span` returns a shared
no-op context manager — the cost is one global read and one ``is None``
check, which is what keeps the instrumentation free in production paths.
Install a tracer globally with :func:`install_tracer` /
:func:`uninstall_tracer`, or locally with the :func:`tracing` context
manager (tests and benchmarks use the latter).

Finished spans export as JSONL (one span per line, for grepping) and as
Chrome-trace-compatible JSON (load the file in ``chrome://tracing`` or
Perfetto to see the flame graph).

The tracer is intentionally single-threaded — one DDA, one session, one
span stack — matching the tool's interaction model.
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import TYPE_CHECKING, Any, Callable, Iterator

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.obs.metrics import AnalysisCounters


class Span:
    """One finished (or in-flight) span."""

    __slots__ = (
        "span_id",
        "parent_id",
        "name",
        "depth",
        "start",
        "end",
        "attrs",
        "counter_deltas",
        "children_time",
        "thread_id",
        "_counters_before",
        "_counters_live",
    )

    def __init__(
        self,
        span_id: int,
        parent_id: int | None,
        name: str,
        depth: int,
        start: float,
        attrs: dict[str, Any],
        thread_id: int | None = None,
    ) -> None:
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.depth = depth
        self.start = start
        self.end = start
        self.attrs = attrs
        #: OS-level id of the thread the span ran on (Chrome-trace ``tid``)
        self.thread_id = (
            thread_id if thread_id is not None else threading.get_ident()
        )
        #: non-zero AnalysisCounters deltas across this span
        self.counter_deltas: dict[str, int] = {}
        #: total wall time spent inside direct child spans
        self.children_time = 0.0
        self._counters_before: dict[str, int] | None = None
        self._counters_live: "AnalysisCounters | None" = None

    @property
    def duration(self) -> float:
        """Wall-clock seconds from enter to exit."""
        return self.end - self.start

    @property
    def self_time(self) -> float:
        """Duration minus the time attributed to child spans."""
        return max(0.0, self.duration - self.children_time)

    def to_dict(self) -> dict[str, Any]:
        """JSON-friendly record (the JSONL line format)."""
        data: dict[str, Any] = {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "depth": self.depth,
            "start_s": round(self.start, 9),
            "duration_s": round(self.duration, 9),
            "self_s": round(self.self_time, 9),
        }
        if self.attrs:
            data["attrs"] = self.attrs
        if self.counter_deltas:
            data["counters"] = self.counter_deltas
        return data

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Span({self.name}, {self.duration * 1e3:.3f}ms)"


class _NullSpanContext:
    """The do-nothing span handed out while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info: object) -> bool:
        return False


_NULL_SPAN = _NullSpanContext()


class _SpanContext:
    """Context manager for one live span of an enabled tracer."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        self._tracer._push(self._span)
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self._span.attrs["error"] = exc_type.__name__
        self._tracer._pop(self._span)
        return False


class Tracer:
    """Collects hierarchical spans; see the module docstring.

    ``counters`` is the :class:`AnalysisCounters` instance to diff at span
    boundaries; a counters object passed to an individual :func:`span`
    call overrides it for that span.
    """

    def __init__(self, counters: "AnalysisCounters | None" = None) -> None:
        self.counters = counters
        self.spans: list[Span] = []
        self._stack: list[Span] = []
        self._next_id = 1
        self._clock = time.perf_counter
        #: the process id stamped on Chrome-trace events
        self.pid = os.getpid()
        self._sinks: list[Callable[[Span], None]] = []

    def add_sink(self, sink: Callable[[Span], None]) -> None:
        """Call ``sink(span)`` for every span as it finishes.

        This is the live-streaming hook: the service registers a sink
        that fans finished spans out to SSE subscribers while a request
        or background job is still running.  Sink errors are swallowed —
        a slow or broken consumer must never fail the traced operation.
        """
        self._sinks.append(sink)

    def _emit(self, record: Span) -> None:
        for sink in self._sinks:
            try:
                sink(record)
            except Exception:  # noqa: BLE001 - see add_sink
                pass

    # -- span lifecycle --------------------------------------------------------

    def span(
        self,
        name: str,
        counters: "AnalysisCounters | None" = None,
        **attrs: Any,
    ) -> _SpanContext:
        """Open a span; use as a context manager."""
        record = Span(
            self._next_id,
            self._stack[-1].span_id if self._stack else None,
            name,
            len(self._stack),
            self._clock(),
            attrs,
        )
        self._next_id += 1
        active = counters if counters is not None else self.counters
        if active is not None:
            record._counters_before = active.snapshot()
            record._counters_live = active
        return _SpanContext(self, record)

    def _push(self, record: Span) -> None:
        record.start = self._clock()
        self._stack.append(record)

    def _pop(self, record: Span) -> None:
        record.end = self._clock()
        if self._stack and self._stack[-1] is record:
            self._stack.pop()
        else:  # pragma: no cover - exits out of order only on misuse
            self._stack = [s for s in self._stack if s is not record]
        active = record._counters_live
        record._counters_live = None
        if active is not None and record._counters_before is not None:
            before = record._counters_before
            record.counter_deltas = {
                name: value - before[name]
                for name, value in active.snapshot().items()
                if value != before[name]
            }
        if self._stack:
            self._stack[-1].children_time += record.duration
        self.spans.append(record)
        if self._sinks:
            self._emit(record)

    def record_span(
        self,
        name: str,
        start: float,
        end: float,
        *,
        parent: Span | None = None,
        thread_id: int | None = None,
        **attrs: Any,
    ) -> Span:
        """Append an externally timed span.

        The federation executor runs component subrequests on worker
        threads; the tracer's span stack is single-threaded, so workers
        capture ``perf_counter()`` timestamps themselves and the executor
        records the finished spans from its own thread once the results
        are collected.  ``parent`` defaults to the innermost live span
        (the fan-out span, in that usage), and the recorded duration is
        charged to the parent's children time exactly as a nested
        context-manager span would be.  ``thread_id`` lets the caller
        stamp the worker thread the span actually ran on (the Chrome
        trace then draws fan-out legs on their own rows).
        """
        if parent is None and self._stack:
            parent = self._stack[-1]
        record = Span(
            self._next_id,
            parent.span_id if parent is not None else None,
            name,
            parent.depth + 1 if parent is not None else 0,
            start,
            attrs,
            thread_id=thread_id,
        )
        self._next_id += 1
        record.end = end
        if parent is not None:
            parent.children_time += record.duration
        self.spans.append(record)
        if self._sinks:
            self._emit(record)
        return record

    # -- queries ---------------------------------------------------------------

    def reset(self) -> None:
        """Drop every finished span (the live stack is kept)."""
        self.spans = []

    def by_name(self, name: str) -> list[Span]:
        """All finished spans with exactly this name, in finish order."""
        return [span for span in self.spans if span.name == name]

    def names(self) -> list[str]:
        """Distinct span names, sorted."""
        return sorted({span.name for span in self.spans})

    def total_time(self, name: str) -> float:
        """Summed duration of every span with this name."""
        return sum(span.duration for span in self.by_name(name))

    def top_self_time(self, limit: int = 10) -> list[tuple[str, float, int]]:
        """``(name, summed self time, count)`` triples, largest first."""
        totals: dict[str, tuple[float, int]] = {}
        for span in self.spans:
            seconds, count = totals.get(span.name, (0.0, 0))
            totals[span.name] = (seconds + span.self_time, count + 1)
        ranked = [
            (name, seconds, count)
            for name, (seconds, count) in totals.items()
        ]
        ranked.sort(key=lambda item: (-item[1], item[0]))
        return ranked[:limit]

    # -- export ----------------------------------------------------------------

    def to_jsonl(self) -> str:
        """One JSON object per finished span, in finish order."""
        return "\n".join(
            json.dumps(span.to_dict(), sort_keys=True) for span in self.spans
        ) + ("\n" if self.spans else "")

    def to_chrome_trace(self) -> dict[str, Any]:
        """The Chrome ``trace_event`` format (complete ``X`` events).

        Load the dumped JSON in ``chrome://tracing`` or Perfetto.
        Timestamps are microseconds relative to the earliest span.  Each
        event carries the real process id and the OS thread id the span
        ran on, so thread-pool-dispatched service spans land on separate
        rows instead of interleaving on one.
        """
        if not self.spans:
            return {"traceEvents": []}
        origin = min(span.start for span in self.spans)
        events: list[dict[str, Any]] = []
        for span in sorted(self.spans, key=lambda s: (s.start, s.span_id)):
            args: dict[str, Any] = dict(span.attrs)
            args.update(span.counter_deltas)
            events.append(
                {
                    "name": span.name,
                    "ph": "X",
                    "ts": round((span.start - origin) * 1e6, 3),
                    "dur": round(span.duration * 1e6, 3),
                    "pid": self.pid,
                    "tid": span.thread_id,
                    "args": args,
                }
            )
        for tid in sorted({span.thread_id for span in self.spans}):
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": self.pid,
                    "tid": tid,
                    "args": {"name": f"thread-{tid}"},
                }
            )
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def write_jsonl(self, path) -> None:
        """Dump :meth:`to_jsonl` to a file."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_jsonl())

    def write_chrome_trace(self, path) -> None:
        """Dump :meth:`to_chrome_trace` to a file."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_chrome_trace(), handle, indent=2)


#: The globally installed tracer; ``None`` means tracing is disabled.
_TRACER: Tracer | None = None

#: Per-thread tracer override (see :class:`use_tracer`).  The service
#: dispatches each HTTP request on a pool thread under its own tracer;
#: a thread-local slot keeps those tracers from racing each other the
#: way a shared global install would.
_LOCAL = threading.local()


def get_tracer() -> Tracer | None:
    """The active tracer for this thread, or ``None`` when disabled.

    A thread-local tracer (installed with :class:`use_tracer`) shadows
    the process-global one (installed with :func:`install_tracer`).
    """
    local = getattr(_LOCAL, "tracer", None)
    return local if local is not None else _TRACER


class use_tracer:
    """Context manager: activate a tracer for the current thread only.

    ::

        tracer = Tracer()
        with use_tracer(tracer):
            ...  # span() on THIS thread records here

    Unlike :func:`install_tracer`, other threads are unaffected — this is
    how the service traces concurrent requests independently.  Nesting
    restores the previous thread-local tracer on exit.
    """

    __slots__ = ("_tracer", "_previous")

    def __init__(self, tracer: Tracer) -> None:
        self._tracer = tracer
        self._previous: Tracer | None = None

    def __enter__(self) -> Tracer:
        self._previous = getattr(_LOCAL, "tracer", None)
        _LOCAL.tracer = self._tracer
        return self._tracer

    def __exit__(self, *exc_info: object) -> bool:
        _LOCAL.tracer = self._previous
        return False


def install_tracer(tracer: Tracer) -> Tracer:
    """Install (and return) the global tracer; spans start recording."""
    global _TRACER
    _TRACER = tracer
    return tracer


def uninstall_tracer() -> Tracer | None:
    """Disable tracing; returns the tracer that was installed, if any."""
    global _TRACER
    previous = _TRACER
    _TRACER = None
    return previous


def span(
    name: str,
    counters: "AnalysisCounters | None" = None,
    **attrs: Any,
) -> "_SpanContext | _NullSpanContext":
    """Open a span on the installed tracer, or a no-op when disabled.

    This is the function the instrumented hot paths call; keep its
    disabled path to one thread-local read, one global read and one
    comparison.
    """
    tracer = getattr(_LOCAL, "tracer", None)
    if tracer is None:
        tracer = _TRACER
        if tracer is None:
            return _NULL_SPAN
    return tracer.span(name, counters=counters, **attrs)


def record_span(
    name: str,
    start: float,
    end: float,
    **attrs: Any,
) -> "Span | None":
    """Record an externally timed span on the installed tracer, if any.

    The no-tracer path is a thread-local read, a global read and one
    comparison, like :func:`span`.  See :meth:`Tracer.record_span` for
    the semantics.
    """
    tracer = getattr(_LOCAL, "tracer", None)
    if tracer is None:
        tracer = _TRACER
        if tracer is None:
            return None
    return tracer.record_span(name, start, end, **attrs)


class tracing:
    """Context manager: install a fresh tracer, restore the old one after.

    ::

        with tracing() as tracer:
            session.integrate("sc1", "sc2")
        print(tracer.top_self_time())
    """

    def __init__(self, counters: "AnalysisCounters | None" = None) -> None:
        self._tracer = Tracer(counters=counters)
        self._previous: Tracer | None = None

    def __enter__(self) -> Tracer:
        global _TRACER
        self._previous = _TRACER
        _TRACER = self._tracer
        return self._tracer

    def __exit__(self, *exc_info: object) -> bool:
        global _TRACER
        _TRACER = self._previous
        return False


def iter_phases(tracer: Tracer) -> Iterator[str]:
    """Distinct top-level phase prefixes seen by a tracer, sorted."""
    seen = sorted({span.name.split(".", 1)[0] for span in tracer.spans})
    return iter(seen)
