"""Per-phase observability reports.

:func:`summarize` folds a tracer's spans and a counters snapshot into one
JSON-friendly summary — per-phase span counts and self-time, top spans by
self-time, the cache hit ratios of the incremental engine, and a
histogram of propagation-step costs per closure operation.
:func:`render_text` renders the same summary for a terminal;
:func:`render_json` for files such as ``BENCH_obs.json``.

"Self time" is a span's duration minus the time spent inside its child
spans, so per-phase sums are additive even though spans nest (an
``integrate`` span contains its stage spans; only the orchestration
overhead counts as the parent's own cost).
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Any, Mapping

from repro.obs.metrics import Histogram

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.obs.trace import Tracer

#: Propagation-step buckets: closure operations are small-integer-heavy.
PROPAGATION_BUCKETS = (0, 1, 2, 5, 10, 25, 50, 100, 250, 500, 1000)


def _ratio(hits: int, misses: int) -> float | None:
    total = hits + misses
    if total == 0:
        return None
    return hits / total


def cache_ratios(counters: Mapping[str, int]) -> dict[str, float | None]:
    """Cache hit ratios of the incremental engine, from a counters snapshot.

    ``None`` means the corresponding cache was never consulted.
    """
    return {
        "ocs_hit_ratio": _ratio(
            counters.get("ocs_cache_hits", 0),
            counters.get("ocs_cells_recomputed", 0),
        ),
        "acs_hit_ratio": _ratio(
            counters.get("acs_cache_hits", 0), counters.get("acs_rebuilds", 0)
        ),
        "ordering_hit_ratio": _ratio(
            counters.get("ordering_cache_hits", 0),
            counters.get("ordering_rebuilds", 0),
        ),
    }


def summarize(
    tracer: "Tracer", counters: Mapping[str, int] | None = None
) -> dict[str, Any]:
    """One JSON-friendly summary of a traced run.

    ``counters`` is a snapshot dict (``AnalysisCounters.snapshot()`` or
    ``MetricsRegistry.snapshot()``); when omitted, cache ratios are
    derived from the counter deltas recorded on the spans themselves.
    """
    per_name: dict[str, dict[str, Any]] = {}
    per_phase: dict[str, dict[str, Any]] = {}
    propagation = Histogram("propagation_steps", PROPAGATION_BUCKETS)
    delta_totals: dict[str, int] = {}
    for span in tracer.spans:
        name_stats = per_name.setdefault(
            span.name, {"count": 0, "total_s": 0.0, "self_s": 0.0}
        )
        name_stats["count"] += 1
        name_stats["total_s"] += span.duration
        name_stats["self_s"] += span.self_time
        phase = span.name.split(".", 1)[0]
        phase_stats = per_phase.setdefault(
            phase, {"spans": 0, "self_s": 0.0, "names": set()}
        )
        phase_stats["spans"] += 1
        phase_stats["self_s"] += span.self_time
        phase_stats["names"].add(span.name)
        for key, value in span.counter_deltas.items():
            delta_totals[key] = delta_totals.get(key, 0) + value
        steps = span.counter_deltas.get("propagation_steps")
        if steps is not None and span.name.startswith("phase3."):
            propagation.observe(steps)
    for stats in per_phase.values():
        stats["names"] = sorted(stats["names"])
        stats["self_s"] = round(stats["self_s"], 9)
    top = [
        {"name": name, "self_s": round(seconds, 9), "count": count}
        for name, seconds, count in tracer.top_self_time(limit=10)
    ]
    source = counters if counters is not None else delta_totals
    return {
        "phases": {phase: per_phase[phase] for phase in sorted(per_phase)},
        "spans": {
            name: {
                "count": stats["count"],
                "total_s": round(stats["total_s"], 9),
                "self_s": round(stats["self_s"], 9),
            }
            for name, stats in sorted(per_name.items())
        },
        "top_self_time": top,
        "cache": cache_ratios(source),
        "propagation_steps": propagation.snapshot(),
    }


def render_json(summary: dict[str, Any]) -> str:
    """The summary as pretty-printed JSON."""
    return json.dumps(summary, indent=2, sort_keys=True)


def render_text(summary: dict[str, Any]) -> str:
    """The summary as a plain-text report (one screen, diff-friendly)."""
    lines: list[str] = ["Observability report", "====================", ""]
    lines.append("Per-phase self time")
    for phase, stats in summary["phases"].items():
        lines.append(
            f"  {phase:<8} {stats['spans']:>6} spans  "
            f"{stats['self_s'] * 1e3:>10.3f} ms"
        )
    lines.append("")
    lines.append("Top spans by self time")
    for entry in summary["top_self_time"]:
        lines.append(
            f"  {entry['name']:<36} {entry['count']:>6}x  "
            f"{entry['self_s'] * 1e3:>10.3f} ms"
        )
    lines.append("")
    lines.append("Cache hit ratios")
    for key, value in summary["cache"].items():
        rendered = "n/a" if value is None else f"{value:.1%}"
        lines.append(f"  {key:<20} {rendered}")
    lines.append("")
    steps = summary["propagation_steps"]
    lines.append(
        f"Propagation steps per closure op: n={steps['count']}, "
        f"sum={steps['sum']:g}"
    )
    for label, count in steps["buckets"].items():
        if count:
            lines.append(f"  {label:<12} {count}")
    return "\n".join(lines) + "\n"
