"""The DDA audit log: a replayable record of everything a session did.

The paper's central claim is about reducing DDA effort, yet nothing in the
original tool records *what the DDA actually did* in a sitting.  The audit
log fixes that: every registry mutation (schema registration, equivalence
declared/removed, schema refreshed), every assertion specified or
retracted (on either network), every conflict the tool raised, and every
integration action is appended as a structured :class:`AuditEvent` with
enough payload to re-drive a fresh
:class:`~repro.equivalence.session.AnalysisSession` deterministically —
:mod:`repro.obs.replay` does exactly that and checks the final integrated
schema is bitwise identical.

Events are emitted by the engines themselves through a small
:class:`AuditSink` each component holds (``registry.audit``,
``network.audit``), so the log sees mutations no matter which surface
drove them — the :class:`AnalysisSession` facade, the interactive tool's
screens, or direct registry/network calls.  Attach a log with
:meth:`AnalysisSession.attach_audit`; attaching to a session that already
has state first records a ``snapshot`` event capturing it.

The serialised form is JSONL — one event per line — so logs diff, grep
and append cleanly.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Iterator


@dataclass(frozen=True)
class AuditEvent:
    """One recorded action.

    ``scope`` names the component that emitted it (``registry``,
    ``object_network``, ``relationship_network`` or ``session``);
    ``action`` the operation; ``payload`` the JSON-friendly arguments
    needed to replay it.
    """

    seq: int
    scope: str
    action: str
    payload: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {
            "seq": self.seq,
            "scope": self.scope,
            "action": self.action,
            "payload": self.payload,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "AuditEvent":
        return cls(
            seq=int(data["seq"]),
            scope=str(data["scope"]),
            action=str(data["action"]),
            payload=dict(data.get("payload", {})),
        )

    def __str__(self) -> str:
        return f"#{self.seq} {self.scope}.{self.action} {self.payload}"


class AuditLog:
    """An append-only, JSONL-serialisable sequence of :class:`AuditEvent`."""

    def __init__(self) -> None:
        self.events: list[AuditEvent] = []
        self._next_seq = 1

    def emit(self, scope: str, action: str, payload: dict[str, Any]) -> AuditEvent:
        """Append one event (engines call this through their sinks)."""
        event = AuditEvent(self._next_seq, scope, action, payload)
        self._next_seq += 1
        self.events.append(event)
        return event

    # -- container protocol -----------------------------------------------------

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[AuditEvent]:
        return iter(self.events)

    def actions(self) -> list[str]:
        """``scope.action`` labels in order — handy for test assertions."""
        return [f"{event.scope}.{event.action}" for event in self.events]

    # -- serialisation ----------------------------------------------------------

    def to_jsonl(self) -> str:
        """One JSON object per event, in order."""
        return "\n".join(
            json.dumps(event.to_dict(), sort_keys=True) for event in self.events
        ) + ("\n" if self.events else "")

    @classmethod
    def from_jsonl(cls, text: str) -> "AuditLog":
        """Parse a log serialised by :meth:`to_jsonl`."""
        log = cls()
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            event = AuditEvent.from_dict(json.loads(line))
            log.events.append(event)
            log._next_seq = max(log._next_seq, event.seq + 1)
        return log

    def write_jsonl(self, path) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_jsonl())

    @classmethod
    def load_jsonl(cls, path) -> "AuditLog":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_jsonl(handle.read())


class AuditSink:
    """A component's handle on the log: binds its scope name.

    The engines check ``self.audit is not None`` before emitting, so a
    detached component costs one comparison per mutation.
    """

    __slots__ = ("log", "scope")

    def __init__(self, log: AuditLog, scope: str) -> None:
        self.log = log
        self.scope = scope

    def emit(self, action: str, payload: dict[str, Any]) -> AuditEvent:
        return self.log.emit(self.scope, action, payload)
