"""The metrics registry: counters, gauges and histograms.

This is the quantitative half of :mod:`repro.obs`.  A
:class:`MetricsRegistry` holds named metrics — monotonically increasing
:class:`Counter`\\ s, point-in-time :class:`Gauge`\\ s and bucketed
:class:`Histogram`\\ s — and renders them all as one flat JSON-friendly
snapshot.

It also **absorbs** the pre-existing :class:`AnalysisCounters` (the work
counters the incremental analysis engine bumps on its hot paths).  Those
counters keep their plain-``int``-attribute implementation — an increment
on the propagation hot path must stay a single attribute store — but a
counter group registered via :meth:`MetricsRegistry.register_group`
appears in the registry snapshot under a dotted prefix, so one registry
describes everything a session did.

This module deliberately imports nothing from :mod:`repro` so the
low-level engines can depend on it without import cycles.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, fields
from typing import Iterable, Mapping, Protocol

#: Default histogram bucket upper bounds (a 1-2-5 decade ladder).
DEFAULT_BUCKETS: tuple[float, ...] = (
    1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000,
)


class Counter:
    """A monotonically increasing count.

    Thread-safe: the service dispatches request handlers on a thread
    pool, so concurrent :meth:`inc` calls must not lose updates (``+=``
    on an attribute is a read-modify-write, not atomic).  The engines'
    hot-path work counters stay on the lock-free
    :class:`AnalysisCounters` instead.
    """

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        with self._lock:
            self.value += amount

    def reset(self) -> None:
        with self._lock:
            self.value = 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Counter({self.name}={self.value})"


class Gauge:
    """A point-in-time value (set, not accumulated)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0

    def set(self, value: float) -> None:
        self.value = value

    def reset(self) -> None:
        self.value = 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Gauge({self.name}={self.value})"


class Histogram:
    """A bucketed distribution of observed values.

    ``buckets`` are inclusive upper bounds; every observation larger than
    the last bound lands in the overflow bucket.  The snapshot carries the
    per-bucket counts plus ``count``/``sum``, which is enough to render
    the propagation-step distributions the reports show.
    """

    __slots__ = ("name", "buckets", "bucket_counts", "count", "total", "_lock")

    def __init__(
        self, name: str, buckets: Iterable[float] = DEFAULT_BUCKETS
    ) -> None:
        self.name = name
        self.buckets = tuple(sorted(buckets))
        if not self.buckets:
            raise ValueError(f"histogram {name} needs at least one bucket")
        self.bucket_counts = [0] * (len(self.buckets) + 1)
        self.count = 0
        self.total: float = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        with self._lock:
            self.count += 1
            self.total += value
            for index, bound in enumerate(self.buckets):
                if value <= bound:
                    self.bucket_counts[index] += 1
                    return
            self.bucket_counts[-1] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def reset(self) -> None:
        with self._lock:
            self.bucket_counts = [0] * (len(self.buckets) + 1)
            self.count = 0
            self.total = 0

    def snapshot(self) -> dict[str, object]:
        labels = [f"le_{bound:g}" for bound in self.buckets] + ["overflow"]
        with self._lock:
            return {
                "count": self.count,
                "sum": self.total,
                "buckets": dict(zip(labels, self.bucket_counts)),
            }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Histogram({self.name}: n={self.count}, sum={self.total})"


class CounterGroup(Protocol):
    """Anything exposing a flat ``snapshot()`` and a ``reset()``.

    :class:`AnalysisCounters` satisfies this, which is how the registry
    absorbs it without slowing its hot-path increments down.
    """

    def snapshot(self) -> Mapping[str, int]: ...  # pragma: no cover

    def reset(self) -> None: ...  # pragma: no cover


class MetricsRegistry:
    """Named metrics plus absorbed counter groups, one snapshot for all."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._groups: dict[str, CounterGroup] = {}
        self._lock = threading.Lock()

    # -- get-or-create accessors ---------------------------------------------

    def counter(self, name: str) -> Counter:
        metric = self._counters.get(name)
        if metric is None:
            with self._lock:
                metric = self._counters.get(name)
                if metric is None:
                    self._reserve(name)
                    metric = self._counters[name] = Counter(name)
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self._gauges.get(name)
        if metric is None:
            with self._lock:
                metric = self._gauges.get(name)
                if metric is None:
                    self._reserve(name)
                    metric = self._gauges[name] = Gauge(name)
        return metric

    def histogram(
        self, name: str, buckets: Iterable[float] | None = None
    ) -> Histogram:
        metric = self._histograms.get(name)
        if metric is None:
            with self._lock:
                metric = self._histograms.get(name)
                if metric is None:
                    self._reserve(name)
                    metric = self._histograms[name] = Histogram(
                        name,
                        buckets if buckets is not None else DEFAULT_BUCKETS,
                    )
        return metric

    def _reserve(self, name: str) -> None:
        if (
            name in self._counters
            or name in self._gauges
            or name in self._histograms
            or name in self._groups
        ):
            raise ValueError(f"metric name {name!r} already used by another kind")

    # -- absorbed counter groups ----------------------------------------------

    def register_group(self, prefix: str, group: CounterGroup) -> None:
        """Expose an external counter group under ``prefix.*``.

        The group keeps owning its values (the engines keep bumping plain
        attributes); the registry just folds ``group.snapshot()`` into its
        own snapshot and fans ``reset()`` out to it.
        """
        with self._lock:
            self._reserve(prefix)
            self._groups[prefix] = group

    # -- iteration (the Prometheus renderer walks these) -----------------------

    def counters(self) -> dict[str, Counter]:
        with self._lock:
            return dict(self._counters)

    def gauges(self) -> dict[str, Gauge]:
        with self._lock:
            return dict(self._gauges)

    def histograms(self) -> dict[str, Histogram]:
        with self._lock:
            return dict(self._histograms)

    def groups(self) -> dict[str, CounterGroup]:
        with self._lock:
            return dict(self._groups)

    # -- registry-wide operations ----------------------------------------------

    def snapshot(self) -> dict[str, object]:
        """Every metric value, flat, JSON-friendly, deterministic order."""
        counters = self.counters()
        gauges = self.gauges()
        histograms = self.histograms()
        groups = self.groups()
        data: dict[str, object] = {}
        for name in sorted(counters):
            data[name] = counters[name].value
        for name in sorted(gauges):
            data[name] = gauges[name].value
        for name in sorted(histograms):
            data[name] = histograms[name].snapshot()
        for prefix in sorted(groups):
            for field_name, value in groups[prefix].snapshot().items():
                data[f"{prefix}.{field_name}"] = value
        return data

    def reset(self) -> None:
        """Zero every metric, including absorbed groups."""
        for metric in self.counters().values():
            metric.reset()
        for metric in self.gauges().values():
            metric.reset()
        for metric in self.histograms().values():
            metric.reset()
        for group in self.groups().values():
            group.reset()


@dataclass
class AnalysisCounters:
    """Work counters shared by a registry, its cached views and networks.

    Every :class:`~repro.equivalence.registry.EquivalenceRegistry` and
    :class:`~repro.assertions.network.AssertionNetwork` owns one (or shares
    one through an :class:`~repro.equivalence.AnalysisSession`).  The
    fields are plain ints — a hot-path increment is a single attribute
    store — and the whole group plugs into a :class:`MetricsRegistry` via
    :meth:`MetricsRegistry.register_group`.
    """

    #: registry mutations that bumped the version counter
    registry_mutations: int = 0
    #: OCS cells computed from the registry (cache misses)
    ocs_cells_recomputed: int = 0
    #: OCS cells served from the memoized matrix
    ocs_cache_hits: int = 0
    #: ACS views recomputed after an invalidation
    acs_rebuilds: int = 0
    #: ACS views served from cache
    acs_cache_hits: int = 0
    #: ranked candidate lists rebuilt (re-sorted) after an invalidation
    ordering_rebuilds: int = 0
    #: ranked candidate lists served from cache
    ordering_cache_hits: int = 0
    #: individual narrowing compositions performed during path consistency
    propagation_steps: int = 0
    #: retracts/respecifies repaired incrementally (affected region only)
    closure_incremental_retracts: int = 0
    #: retracts/respecifies served by a full network rebuild
    closure_full_rebuilds: int = 0
    #: pairs reset and re-derived by incremental closure repair
    closure_pairs_recomputed: int = 0
    #: full solver propagation runs (solve/trial/explain re-propagations)
    solver_runs: int = 0
    #: triangle revisions performed by the solver's AC-3 worklist
    solver_propagation_steps: int = 0
    #: from-scratch consistency checks (QuickXplain probes, trials)
    solver_consistency_checks: int = 0
    #: minimal conflict sets computed by QuickXplain
    solver_conflicts_minimized: int = 0
    #: equivalence candidates scored and trial-propagated by the suggester
    solver_candidates_checked: int = 0
    #: schema edits applied through the evolution vocabulary
    evolution_edits_applied: int = 0
    #: schema edits rejected by the pre-apply conflict check
    evolution_edits_rejected: int = 0
    #: specified assertions retracted by destructive edits' repairs
    evolution_assertions_retracted: int = 0
    #: pairs re-propagated by the scoped post-edit solver check
    evolution_pairs_repropagated: int = 0
    #: clusters rebuilt while patching an integrated schema after an edit
    evolution_clusters_rebuilt: int = 0
    #: federation plans invalidated by localized evolve changes
    evolution_plans_invalidated: int = 0

    def reset(self) -> None:
        """Zero every counter (benchmarks call this between phases)."""
        for spec in fields(self):
            setattr(self, spec.name, 0)

    def snapshot(self) -> dict[str, int]:
        """The current counter values as a plain dict (JSON-friendly)."""
        return {spec.name: getattr(self, spec.name) for spec in fields(self)}

    def __str__(self) -> str:
        parts = ", ".join(
            f"{name}={value}" for name, value in self.snapshot().items() if value
        )
        if not parts:
            return "AnalysisCounters(all zero)"
        return f"AnalysisCounters({parts})"
