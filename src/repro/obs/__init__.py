"""``repro.obs`` — end-to-end observability for the four-phase pipeline.

Three complementary instruments, all wired through the engines so they see
every surface (the :class:`~repro.equivalence.AnalysisSession` facade, the
interactive tool's screens, and direct registry/network calls):

* **Tracing** (:mod:`repro.obs.trace`) — hierarchical spans with wall
  time, self time and :class:`AnalysisCounters` deltas; exportable as
  JSONL or Chrome-trace JSON.  Disabled by default at near-zero cost;
  enable with :func:`tracing` / :func:`install_tracer`.
* **Metrics** (:mod:`repro.obs.metrics`) — a registry of counters, gauges
  and histograms that absorbs the engine's work counters
  (:class:`AnalysisCounters`).
* **Audit + replay** (:mod:`repro.obs.audit`, :mod:`repro.obs.replay`) —
  a JSONL event log of every DDA action, replayable into a fresh session
  with bitwise-identical integration results.

:mod:`repro.obs.report` renders per-phase summaries from any of the above.

Heavier submodules (audit/replay/report) load lazily so that the engines'
hot-path import — ``from repro.obs.trace import span`` — stays free of
import cycles.
"""

from repro.obs.metrics import (
    AnalysisCounters,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.trace import (
    Span,
    Tracer,
    get_tracer,
    install_tracer,
    span,
    tracing,
    uninstall_tracer,
    use_tracer,
)

__all__ = [
    # metrics
    "AnalysisCounters",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    # tracing
    "Span",
    "Tracer",
    "get_tracer",
    "install_tracer",
    "span",
    "tracing",
    "uninstall_tracer",
    "use_tracer",
    # telemetry plane (lazy): Prometheus exposition, SSE streaming,
    # request correlation
    "RollingLatency",
    "StreamHub",
    "StreamSubscription",
    "current_request_id",
    "parse_prometheus",
    "render_prometheus",
    "set_request_id",
    "sse_stream",
    # audit + replay (lazy; ``repro.obs.replay`` itself is the submodule —
    # import the function from it: ``from repro.obs.replay import replay``)
    "AuditEvent",
    "AuditLog",
    "AuditSink",
    "ReplayOutcome",
    "schema_fingerprint",
    # reports (lazy)
    "summarize",
    "render_text",
    "render_json",
]

_LAZY = {
    "AuditEvent": ("repro.obs.audit", "AuditEvent"),
    "AuditLog": ("repro.obs.audit", "AuditLog"),
    "AuditSink": ("repro.obs.audit", "AuditSink"),
    "ReplayOutcome": ("repro.obs.replay", "ReplayOutcome"),
    "schema_fingerprint": ("repro.obs.replay", "schema_fingerprint"),
    "summarize": ("repro.obs.report", "summarize"),
    "render_text": ("repro.obs.report", "render_text"),
    "render_json": ("repro.obs.report", "render_json"),
    "RollingLatency": ("repro.obs.telemetry", "RollingLatency"),
    "StreamHub": ("repro.obs.telemetry", "StreamHub"),
    "StreamSubscription": ("repro.obs.telemetry", "StreamSubscription"),
    "current_request_id": ("repro.obs.telemetry", "current_request_id"),
    "parse_prometheus": ("repro.obs.telemetry", "parse_prometheus"),
    "render_prometheus": ("repro.obs.telemetry", "render_prometheus"),
    "set_request_id": ("repro.obs.telemetry", "set_request_id"),
    "sse_stream": ("repro.obs.telemetry", "sse_stream"),
}


def __getattr__(name: str):
    try:
        module_name, attribute = _LAZY[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    import importlib

    value = getattr(importlib.import_module(module_name), attribute)
    globals()[name] = value  # cache so later lookups skip __getattr__
    return value
