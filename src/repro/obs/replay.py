"""Deterministic replay of a recorded DDA audit log.

:func:`replay` re-drives a fresh
:class:`~repro.equivalence.session.AnalysisSession` from an
:class:`~repro.obs.audit.AuditLog`, event by event, and verifies that the
session behaves exactly as the recorded one did: conflicts recur where
they were recorded, and every ``integrate`` event reproduces a
**bitwise-identical** integrated schema (checked through
:func:`schema_fingerprint`, a SHA-256 over the canonical JSON form).

That makes an audit log a portable, diffable reproduction of a DDA
sitting: attach a log to a live session (or to the interactive tool's
embedded session), save the JSONL, and anyone can re-run the sitting and
obtain the same integrated schema — or be told precisely which event
diverged.

Since the kernel refactor the audit log is a live tap on the event bus
and replay is literally kernel event application: this module is a thin
loop over :func:`repro.kernel.apply.apply_event`, the same engine that
drives kernel ``checkout``, redo and rollback.  The fingerprint helpers
moved to :mod:`repro.kernel.apply` and are re-exported here unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable

from repro.errors import ReplayError
from repro.kernel.apply import (
    apply_event,
    canonical_schema_json,
    event_label,
    schema_fingerprint,
)
from repro.obs.audit import AuditEvent, AuditLog

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.equivalence.session import AnalysisSession
    from repro.integration.result import IntegrationResult

__all__ = [
    "ReplayOutcome",
    "canonical_schema_json",
    "replay",
    "schema_fingerprint",
]


@dataclass
class ReplayOutcome:
    """What :func:`replay` produced."""

    #: the freshly driven session, in its final state
    session: "AnalysisSession"
    #: every integration result, in recorded order
    results: "list[IntegrationResult]" = field(default_factory=list)
    #: recorded vs replayed fingerprint per integrate event
    fingerprints: list[tuple[str, str]] = field(default_factory=list)
    #: events that diverged (only populated with ``strict=False``)
    divergences: list[str] = field(default_factory=list)

    @property
    def verified(self) -> bool:
        """Whether every check passed (always true after a strict replay)."""
        return not self.divergences and all(
            recorded == replayed for recorded, replayed in self.fingerprints
        )


def replay(
    log: AuditLog | Iterable[AuditEvent], *, strict: bool = True
) -> ReplayOutcome:
    """Re-drive a fresh :class:`AnalysisSession` from an audit log.

    With ``strict`` (the default) any divergence — an integrate event
    whose schema fingerprint differs, a recorded conflict that no longer
    conflicts, a recorded success that now raises — aborts with
    :class:`~repro.errors.ReplayError` naming the event.  With
    ``strict=False`` divergences are collected on the outcome instead.
    """
    from repro.equivalence.session import AnalysisSession

    session = AnalysisSession()
    outcome = ReplayOutcome(session)

    def diverge(event, message: str) -> None:
        label = f"{event_label(event)}: {message}"
        if strict:
            raise ReplayError(label)
        outcome.divergences.append(label)

    for event in log:
        apply_event(
            session,
            event,
            diverge,
            results=outcome.results,
            fingerprints=outcome.fingerprints,
        )
    return outcome
