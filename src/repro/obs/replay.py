"""Deterministic replay of a recorded DDA audit log.

:func:`replay` re-drives a fresh
:class:`~repro.equivalence.session.AnalysisSession` from an
:class:`~repro.obs.audit.AuditLog`, event by event, and verifies that the
session behaves exactly as the recorded one did: conflicts recur where
they were recorded, and every ``integrate`` event reproduces a
**bitwise-identical** integrated schema (checked through
:func:`schema_fingerprint`, a SHA-256 over the canonical JSON form).

That makes an audit log a portable, diffable reproduction of a DDA
sitting: attach a log to a live session (or to the interactive tool's
embedded session), save the JSONL, and anyone can re-run the sitting and
obtain the same integrated schema — or be told precisely which event
diverged.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable

from repro.assertions.kinds import Source
from repro.ecr.json_io import schema_from_dict, schema_to_dict
from repro.ecr.schema import Schema
from repro.errors import AssertionSpecError, ConflictError, ReplayError
from repro.integration.options import IntegrationOptions
from repro.obs.audit import AuditEvent, AuditLog

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.equivalence.session import AnalysisSession
    from repro.integration.result import IntegrationResult


def canonical_schema_json(schema: Schema) -> str:
    """The canonical (sorted-key, compact) JSON form of a schema."""
    return json.dumps(
        schema_to_dict(schema), sort_keys=True, separators=(",", ":")
    )


def schema_fingerprint(schema: Schema) -> str:
    """SHA-256 hex digest of :func:`canonical_schema_json`.

    Two schemas share a fingerprint iff their canonical JSON is bitwise
    identical — the equality the replay round-trip asserts.
    """
    return hashlib.sha256(
        canonical_schema_json(schema).encode("utf-8")
    ).hexdigest()


@dataclass
class ReplayOutcome:
    """What :func:`replay` produced."""

    #: the freshly driven session, in its final state
    session: "AnalysisSession"
    #: every integration result, in recorded order
    results: "list[IntegrationResult]" = field(default_factory=list)
    #: recorded vs replayed fingerprint per integrate event
    fingerprints: list[tuple[str, str]] = field(default_factory=list)
    #: events that diverged (only populated with ``strict=False``)
    divergences: list[str] = field(default_factory=list)

    @property
    def verified(self) -> bool:
        """Whether every check passed (always true after a strict replay)."""
        return not self.divergences and all(
            recorded == replayed for recorded, replayed in self.fingerprints
        )


def replay(
    log: AuditLog | Iterable[AuditEvent], *, strict: bool = True
) -> ReplayOutcome:
    """Re-drive a fresh :class:`AnalysisSession` from an audit log.

    With ``strict`` (the default) any divergence — an integrate event
    whose schema fingerprint differs, a recorded conflict that no longer
    conflicts, a recorded success that now raises — aborts with
    :class:`~repro.errors.ReplayError` naming the event.  With
    ``strict=False`` divergences are collected on the outcome instead.
    """
    from repro.equivalence.session import AnalysisSession

    session = AnalysisSession()
    outcome = ReplayOutcome(session)

    def diverge(event: AuditEvent, message: str) -> None:
        label = f"event {event.seq} ({event.scope}.{event.action}): {message}"
        if strict:
            raise ReplayError(label)
        outcome.divergences.append(label)

    for event in log:
        payload = event.payload
        if event.scope == "registry":
            _apply_registry_event(session, event, diverge)
        elif event.scope in ("object_network", "relationship_network"):
            _apply_network_event(session, event, diverge)
        elif event.scope == "session":
            if event.action == "integrate":
                _apply_integrate_event(session, event, outcome, diverge)
            elif event.action == "snapshot":
                session = _apply_snapshot_event(session, event, diverge)
                outcome.session = session
            else:
                diverge(event, f"unknown session action {event.action!r}")
        elif event.scope == "federation":
            # federated queries are informational: they read the analysis
            # state (mappings, assertions) but never mutate it, so replay
            # has nothing to apply and nothing to verify
            pass
        else:
            diverge(event, f"unknown scope {event.scope!r}")
        del payload  # each handler reads event.payload itself
    return outcome


# -- per-scope appliers ---------------------------------------------------------


def _apply_registry_event(session, event: AuditEvent, diverge) -> None:
    payload = event.payload
    try:
        if event.action == "register_schema":
            session.add_schema(schema_from_dict(payload["schema"]))
        elif event.action == "declare_equivalent":
            session.registry.declare_equivalent(
                payload["first"], payload["second"]
            )
        elif event.action == "remove_from_class":
            session.registry.remove_from_class(payload["ref"])
        elif event.action == "refresh_schema":
            session.refresh_schema(
                payload["schema"]["name"],
                replacement=schema_from_dict(payload["schema"]),
            )
        else:
            diverge(event, f"unknown registry action {event.action!r}")
    except ReplayError:
        raise
    except Exception as exc:  # pragma: no cover - divergence reporting
        diverge(event, f"replay raised {type(exc).__name__}: {exc}")


def _relationships(event: AuditEvent) -> bool:
    return event.scope == "relationship_network"


def _apply_network_event(session, event: AuditEvent, diverge) -> None:
    payload = event.payload
    relationships = _relationships(event)
    if event.action == "specify":
        try:
            session.specify(
                payload["first"],
                payload["second"],
                int(payload["kind"]),
                relationships=relationships,
                source=Source[payload.get("source", "DDA")],
                note=payload.get("note", ""),
            )
        except (ConflictError, AssertionSpecError) as exc:
            diverge(event, f"recorded success now raises {type(exc).__name__}")
    elif event.action == "retract":
        try:
            session.retract(
                payload["first"], payload["second"], relationships=relationships
            )
        except AssertionSpecError as exc:
            diverge(event, f"recorded retract now raises: {exc}")
    elif event.action in ("conflict", "rejected"):
        expected = (
            ConflictError if event.action == "conflict" else AssertionSpecError
        )
        try:
            session.specify(
                payload["first"],
                payload["second"],
                int(payload["kind"]),
                relationships=relationships,
                source=Source[payload.get("source", "DDA")],
                note=payload.get("note", ""),
            )
        except expected:
            return  # the recorded failure reproduced — the network rolled back
        except AssertionSpecError as exc:
            diverge(
                event,
                f"recorded {event.action} reproduced as {type(exc).__name__}",
            )
            return
        diverge(event, f"recorded {event.action} no longer raises")
    else:
        diverge(event, f"unknown network action {event.action!r}")


def _apply_integrate_event(session, event: AuditEvent, outcome, diverge) -> None:
    payload = event.payload
    options = IntegrationOptions(**payload.get("options", {}))
    result = session.integrate(
        payload["first"],
        payload["second"],
        result_name=payload.get("result_name", "integrated"),
        options=options,
    )
    outcome.results.append(result)
    replayed = schema_fingerprint(result.schema)
    recorded = payload.get("fingerprint", replayed)
    outcome.fingerprints.append((recorded, replayed))
    if recorded != replayed:
        diverge(
            event,
            f"integrated schema diverged (recorded {recorded[:12]}…, "
            f"replayed {replayed[:12]}…)",
        )


def _apply_snapshot_event(session, event: AuditEvent, diverge):
    """Rebuild snapshotted state: schemas, equivalence classes, assertions.

    A snapshot is an absolute statement of the session's state (recorded
    when a log is attached to a non-empty session, or re-attached after a
    rebuild such as the tool's Delete Schema).  If the replayed session
    already has state, it is discarded and rebuilt from the snapshot.
    Returns the (possibly fresh) session.
    """
    from repro.equivalence.session import AnalysisSession

    payload = event.payload
    if (
        session.schemas()
        or session.object_network.specified_assertions()
        or session.relationship_network.specified_assertions()
    ):
        session = AnalysisSession()
    for schema_data in payload.get("schemas", ()):
        session.add_schema(schema_from_dict(schema_data))
    for members in payload.get("equivalences", ()):
        anchor = members[0]
        for other in members[1:]:
            session.registry.declare_equivalent(anchor, other)
    for entry in payload.get("assertions", ()):
        try:
            session.specify(
                entry["first"],
                entry["second"],
                int(entry["kind"]),
                relationships=bool(entry.get("relationships", False)),
                source=Source[entry.get("source", "DDA")],
                note=entry.get("note", ""),
            )
        except (ConflictError, AssertionSpecError) as exc:
            diverge(event, f"snapshot assertion raised {type(exc).__name__}")
    return session
