"""repro — a reproduction of the ICDE 1988 schema-integration tool.

Sheth, Larson, Cornelio & Navathe, *A Tool for Integrating Conceptual
Schemas and User Views* (Proc. 4th Intl. Conf. on Data Engineering, 1988).

The library covers the paper's four-phase methodology end to end:

1. **Schema collection** — the ECR data model (:mod:`repro.ecr`) plus
   translators from relational/hierarchical models (:mod:`repro.translate`);
2. **Schema analysis** — attribute equivalence classes, the ACS/OCS
   matrices and the resemblance heuristics (:mod:`repro.equivalence`);
3. **Assertion specification** — the five domain assertions, transitive
   derivation and conflict detection (:mod:`repro.assertions`);
4. **Integration** — merging, IS-A lattices, derived classes/attributes
   and schema mappings (:mod:`repro.integration`), with request rewriting
   in both integration contexts (:mod:`repro.query`).

The interactive tool itself lives in :mod:`repro.tool`; the paper's
example schemas and the synthetic workload generator in
:mod:`repro.workloads`.  Once an integration result exists, global
requests against it can be *executed* over the component databases by
the federated query engine (:mod:`repro.federation`): concurrent
fan-out, assertion-aware merging, and graceful degradation when
components fail.

Quickstart (the :class:`AnalysisSession` facade is the recommended entry
point — it owns the registry, the memoized OCS/ACS views and the assertion
networks, keeping them incrementally consistent)::

    from repro import AnalysisSession, AssertionKind, SchemaBuilder

    sc1 = SchemaBuilder("sc1").entity(
        "Student", attrs=[("Name", "char", True), ("GPA", "real")]
    ).build()
    sc2 = SchemaBuilder("sc2").entity(
        "Pupil", attrs=[("Name", "char", True)]
    ).build()

    session = AnalysisSession([sc1, sc2])
    session.declare_equivalent("sc1.Student.Name", "sc2.Pupil.Name")
    session.specify("sc1.Student", "sc2.Pupil", AssertionKind.EQUALS)

    result = session.integrate("sc1", "sc2")
    print(result.schema.summary())
"""

from repro.ecr import (
    Attribute,
    AttributeRef,
    Category,
    CardinalityConstraint,
    Domain,
    DomainKind,
    EntitySet,
    ObjectRef,
    Participation,
    RelationshipSet,
    Schema,
    SchemaBuilder,
    ascii_diagram,
    dot_diagram,
    parse_ddl,
    to_ddl,
    validate_schema,
)
from repro.equivalence import (
    AcsMatrix,
    AnalysisSession,
    CandidatePair,
    EquivalenceRegistry,
    OcsMatrix,
    RegistryChange,
    attribute_ratio,
    ordered_object_pairs,
)
from repro.obs.metrics import AnalysisCounters
from repro.assertions import (
    Assertion,
    AssertionKind,
    AssertionNetwork,
    ConflictReport,
    Relation,
)
from repro.integration import (
    IntegrationOptions,
    IntegrationResult,
    Integrator,
    SchemaMapping,
    build_mappings,
    integrate_all,
    integrate_pair,
)
from repro.query import (
    Request,
    parse_request,
    rewrite_to_components,
    rewrite_to_integrated,
)
from repro.federation import (
    ExecutionPolicy,
    FederatedPlan,
    FederationEngine,
    FederationHealth,
    FederationResult,
    MergeStrategy,
)
from repro.errors import (
    AssertionSpecError,
    BackendError,
    ConflictError,
    ConsistencyFailure,
    CorruptDictionaryError,
    DdlError,
    DictionaryError,
    DictionaryFormatError,
    DictionaryNotFoundError,
    DuplicateNameError,
    EquivalenceError,
    FederationError,
    IntegrationError,
    KernelError,
    MappingError,
    QueryError,
    ReplayError,
    ReproError,
    SchemaError,
    ScriptError,
    ToolError,
    TranslationError,
    UnknownNameError,
    ValidationError,
    WalError,
)

__version__ = "1.0.0"

__all__ = [
    # ECR model
    "Attribute",
    "AttributeRef",
    "Category",
    "CardinalityConstraint",
    "Domain",
    "DomainKind",
    "EntitySet",
    "ObjectRef",
    "Participation",
    "RelationshipSet",
    "Schema",
    "SchemaBuilder",
    "ascii_diagram",
    "dot_diagram",
    "parse_ddl",
    "to_ddl",
    "validate_schema",
    # equivalence
    "AcsMatrix",
    "AnalysisCounters",
    "AnalysisSession",
    "CandidatePair",
    "EquivalenceRegistry",
    "OcsMatrix",
    "RegistryChange",
    "attribute_ratio",
    "ordered_object_pairs",
    # assertions
    "Assertion",
    "AssertionKind",
    "AssertionNetwork",
    "ConflictReport",
    "Relation",
    # integration
    "IntegrationOptions",
    "IntegrationResult",
    "Integrator",
    "SchemaMapping",
    "build_mappings",
    "integrate_all",
    "integrate_pair",
    # query
    "Request",
    "parse_request",
    "rewrite_to_components",
    "rewrite_to_integrated",
    # federation
    "ExecutionPolicy",
    "FederatedPlan",
    "FederationEngine",
    "FederationHealth",
    "FederationResult",
    "MergeStrategy",
    # errors
    "AssertionSpecError",
    "BackendError",
    "ConflictError",
    "ConsistencyFailure",
    "CorruptDictionaryError",
    "DdlError",
    "DictionaryError",
    "DictionaryFormatError",
    "DictionaryNotFoundError",
    "DuplicateNameError",
    "EquivalenceError",
    "FederationError",
    "IntegrationError",
    "KernelError",
    "MappingError",
    "QueryError",
    "ReplayError",
    "ReproError",
    "SchemaError",
    "ScriptError",
    "ToolError",
    "TranslationError",
    "UnknownNameError",
    "ValidationError",
    "WalError",
    "__version__",
]
