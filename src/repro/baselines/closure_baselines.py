"""Assertion-entry baselines (experiments EXP-CLO and EXP-CON).

The paper derives assertions "using rules of transitive composition" so
the DDA need not type every pair.  These drivers replay an oracle DDA over
all cross-schema pairs:

* **with closure** — before asking, check whether the network has already
  determined the pair; skip the question if so;
* **without closure** — ask (and record) every pair regardless.

Both count the questions the DDA answers, the assertions derived for free
and the conflicts raised (for EXP-CON, the oracle can be corrupted to give
wrong answers at a known rate).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.assertions.kinds import AssertionKind
from repro.assertions.network import AssertionNetwork
from repro.ecr.schema import ObjectRef, Schema
from repro.errors import ConflictError
from repro.workloads.oracle import GroundTruth

_CODES = [kind for kind in AssertionKind]


@dataclass
class ClosureStats:
    """Outcome of replaying assertion entry over one schema pair."""

    pairs_total: int = 0
    questions_asked: int = 0
    derived_free: int = 0
    conflicts: int = 0
    conflict_pairs: list[tuple[ObjectRef, ObjectRef]] = field(
        default_factory=list
    )

    @property
    def questions_saved(self) -> int:
        """Questions the DDA did not have to answer."""
        return self.pairs_total - self.questions_asked

    @property
    def savings_ratio(self) -> float:
        if self.pairs_total == 0:
            return 0.0
        return self.questions_saved / self.pairs_total


def _review_order(first: Schema, second: Schema) -> list[
    tuple[ObjectRef, ObjectRef]
]:
    return [
        (ObjectRef(first.name, a.name), ObjectRef(second.name, b.name))
        for a in first.object_classes()
        for b in second.object_classes()
    ]


def _answer(
    truth: GroundTruth,
    pair: tuple[ObjectRef, ObjectRef],
    error_rate: float,
    rng: random.Random,
) -> AssertionKind:
    kind = truth.assertion_between(pair[0], pair[1])
    if error_rate > 0 and rng.random() < error_rate:
        wrong = [candidate for candidate in _CODES if candidate is not kind]
        return rng.choice(wrong)
    return kind


def drive_assertions_with_closure(
    first: Schema,
    second: Schema,
    truth: GroundTruth,
    error_rate: float = 0.0,
    seed: int = 0,
) -> tuple[AssertionNetwork, ClosureStats]:
    """Replay the oracle with transitive derivation enabled (the tool)."""
    rng = random.Random(seed)
    network = AssertionNetwork()
    network.seed_schema(first)
    network.seed_schema(second)
    stats = ClosureStats()
    for pair in _review_order(first, second):
        stats.pairs_total += 1
        if not network.is_undetermined(*pair):
            stats.derived_free += 1
            continue
        stats.questions_asked += 1
        kind = _answer(truth, pair, error_rate, rng)
        try:
            network.specify(pair[0], pair[1], kind)
        except ConflictError:
            stats.conflicts += 1
            stats.conflict_pairs.append(pair)
    return network, stats


def drive_assertions_without_closure(
    first: Schema,
    second: Schema,
    truth: GroundTruth,
    error_rate: float = 0.0,
    seed: int = 0,
) -> ClosureStats:
    """Replay the oracle with no derivation: every pair is a question.

    Contradictory answers go undetected (there is no consistency check
    either), which is exactly what EXP-CON contrasts: the baseline's
    conflict count is always zero even when the answers disagree.
    """
    rng = random.Random(seed)
    stats = ClosureStats()
    for pair in _review_order(first, second):
        stats.pairs_total += 1
        stats.questions_asked += 1
        _answer(truth, pair, error_rate, rng)
    return stats
