"""Baselines the experiments compare the paper's heuristics against.

* :mod:`repro.baselines.ordering_baselines` — candidate-pair orderings
  (random, alphabetical, exhaustive) against the OCS resemblance ordering;
* :mod:`repro.baselines.closure_baselines` — assertion entry with and
  without transitive derivation; and
* :mod:`repro.baselines.strategies` — integration-order strategies for
  n-ary integration; and
* :mod:`repro.baselines.solver_baselines` — the incremental-closure
  oracle the batch constraint solver is checked against; and
* :mod:`repro.baselines.evolution_baselines` — the from-scratch rebuild
  oracle incremental schema-evolution repair is pinned to.
"""

from repro.baselines.ordering_baselines import (
    all_cross_pairs,
    ordering_alphabetical,
    ordering_random,
    ordering_resemblance,
    recall_at_k,
)
from repro.baselines.closure_baselines import (
    ClosureStats,
    drive_assertions_with_closure,
    drive_assertions_without_closure,
)
from repro.baselines.solver_baselines import (
    OracleOutcome,
    closure_oracle,
    derived_keys,
    objects_of,
)
from repro.baselines.evolution_baselines import (
    rebuild_matches,
    rebuild_session,
    reintegrate_from_scratch,
    session_from_payload,
    state_payload_fingerprint,
)
from repro.baselines.strategies import ladder_orders

__all__ = [
    "OracleOutcome",
    "closure_oracle",
    "derived_keys",
    "objects_of",
    "all_cross_pairs",
    "ordering_alphabetical",
    "ordering_random",
    "ordering_resemblance",
    "recall_at_k",
    "ClosureStats",
    "drive_assertions_with_closure",
    "drive_assertions_without_closure",
    "ladder_orders",
    "rebuild_matches",
    "rebuild_session",
    "reintegrate_from_scratch",
    "session_from_payload",
    "state_payload_fingerprint",
]
