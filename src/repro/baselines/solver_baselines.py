"""The incremental-closure oracle the batch solver is checked against.

``repro.solver`` recomputes what :class:`AssertionNetwork` derives
incrementally; these drivers run the network over a raw fact list so the
Hypothesis suite and ``benchmarks/record_solver.py`` can compare the two
engines fact-for-fact:

* :func:`closure_oracle` — feed facts into a fresh network one at a
  time (the tool's Screen 8 path) and report its derived assertions,
  feasible table and propagation-step count;
* the solver side lives in :class:`repro.solver.ConstraintSolver`.

On conflict-free inputs the two must agree exactly; on inconsistent
inputs the oracle's :class:`~repro.errors.ConflictError` and the
solver's :class:`~repro.errors.ConsistencyFailure` must co-occur.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.assertions.assertion import Assertion, Pair
from repro.assertions.kinds import Relation
from repro.assertions.network import AssertionNetwork
from repro.ecr.schema import ObjectRef
from repro.errors import ConflictError
from repro.obs.metrics import AnalysisCounters


@dataclass
class OracleOutcome:
    """What the incremental network made of a fact sequence."""

    network: AssertionNetwork
    derived: dict[Pair, Assertion]
    feasible: dict[Pair, frozenset[Relation]]
    propagation_steps: int
    conflict: ConflictError | None = None
    #: index into the fact sequence of the rejected fact, if any
    conflict_index: int | None = None
    accepted: list[Assertion] = field(default_factory=list)

    @property
    def consistent(self) -> bool:
        return self.conflict is None


def derived_keys(derived: dict[Pair, Assertion]) -> set[tuple[Pair, int]]:
    """Comparable (pair, kind-code) view of a derived-assertion table."""
    return {
        (pair, assertion.kind.code) for pair, assertion in derived.items()
    }


def closure_oracle(
    objects: Iterable[ObjectRef],
    facts: Sequence[Assertion],
    *,
    stop_on_conflict: bool = True,
) -> OracleOutcome:
    """Drive a fresh network through the facts, one specify at a time.

    With ``stop_on_conflict`` (the default) the first rejected fact ends
    the run, mirroring the solver's all-or-nothing batch answer; without
    it, rejected facts are skipped and the rest still commit, which the
    benchmark uses to count how many contradictions the oracle can see.
    """
    counters = AnalysisCounters()
    network = AssertionNetwork(counters=counters)
    for ref in objects:
        network.add_object(ref)
    outcome = OracleOutcome(
        network=network, derived={}, feasible={}, propagation_steps=0
    )
    for index, fact in enumerate(facts):
        try:
            accepted = network.specify(
                fact.first, fact.second, fact.kind, fact.source, fact.note
            )
        except ConflictError as exc:
            if outcome.conflict is None:
                outcome.conflict = exc
                outcome.conflict_index = index
            if stop_on_conflict:
                break
        else:
            outcome.accepted.append(accepted)
    outcome.derived = {
        assertion.pair: assertion
        for assertion in network.derived_assertions()
    }
    outcome.feasible = dict(network.feasible_table())
    outcome.propagation_steps = counters.propagation_steps
    return outcome


def objects_of(facts: Sequence[Assertion]) -> list[ObjectRef]:
    """Every object mentioned by a fact list, first-mention order."""
    seen: dict[ObjectRef, None] = {}
    for fact in facts:
        seen.setdefault(fact.first)
        seen.setdefault(fact.second)
    return list(seen)
