"""Candidate-pair ordering baselines (experiment EXP-ORD).

The paper's claim: ordering object pairs by the resemblance heuristic lets
the DDA find the integrable pairs early.  We compare the resemblance
ordering against a random permutation and an alphabetical listing of *all*
cross-schema pairs, measuring recall@k — the fraction of true
correspondences among the first k pairs reviewed.
"""

from __future__ import annotations

import random

from repro.ecr.schema import ObjectRef, Schema
from repro.equivalence.ordering import ordered_object_pairs
from repro.equivalence.registry import EquivalenceRegistry
from repro.workloads.oracle import GroundTruth

#: An ordering is just a list of cross-schema object pairs to review.
PairList = list[tuple[ObjectRef, ObjectRef]]


def all_cross_pairs(first: Schema, second: Schema) -> PairList:
    """Every cross-schema object-class pair, in declaration order."""
    return [
        (ObjectRef(first.name, a.name), ObjectRef(second.name, b.name))
        for a in first.object_classes()
        for b in second.object_classes()
    ]


def ordering_resemblance(
    registry: EquivalenceRegistry, first: Schema, second: Schema
) -> PairList:
    """The paper's ordering: descending attribute ratio (Screen 8).

    Pairs with no equivalent attributes follow the ranked ones in
    alphabetical order, so the review list is complete and comparable to
    the baselines.
    """
    ranked = ordered_object_pairs(registry, first.name, second.name)
    head = [(pair.first, pair.second) for pair in ranked]
    covered = set(head)
    tail = sorted(
        pair for pair in all_cross_pairs(first, second) if pair not in covered
    )
    return head + tail


def ordering_random(
    first: Schema, second: Schema, seed: int = 0
) -> PairList:
    """A uniformly random review order (the no-tool baseline)."""
    pairs = all_cross_pairs(first, second)
    random.Random(seed).shuffle(pairs)
    return pairs


def ordering_alphabetical(first: Schema, second: Schema) -> PairList:
    """Alphabetical by qualified names (a naive printed listing)."""
    return sorted(all_cross_pairs(first, second))


def recall_at_k(
    ordering: PairList, truth: GroundTruth, k: int
) -> float:
    """Fraction of the true correspondences found in the first ``k`` pairs."""
    relevant = truth.object_assertions
    if not relevant:
        return 1.0
    seen = 0
    for first, second in ordering[:k]:
        key = (second, first) if second < first else (first, second)
        if key in relevant:
            seen += 1
    return seen / len(relevant)


def recall_curve(ordering: PairList, truth: GroundTruth) -> list[float]:
    """recall@k for every prefix length 1..len(ordering)."""
    return [
        recall_at_k(ordering, truth, k) for k in range(1, len(ordering) + 1)
    ]


def effort_to_full_recall(ordering: PairList, truth: GroundTruth) -> int:
    """Number of pairs the DDA must review to see every true correspondence.

    Returns ``len(ordering)`` when some correspondence never appears (it
    then costs a full scan to be sure).
    """
    remaining = set(truth.object_assertions)
    for index, (first, second) in enumerate(ordering, start=1):
        key = (second, first) if second < first else (first, second)
        remaining.discard(key)
        if not remaining:
            return index
    return len(ordering)
