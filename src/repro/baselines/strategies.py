"""Integration-order strategies for n-ary integration (EXP-NARY).

With more than two component schemas, the iterated binary integration can
visit the schemas in different orders; the order changes how many
intermediate derived/equivalent objects appear and how much DDA work each
step needs.  These helpers enumerate orders for the benchmark to sweep.
"""

from __future__ import annotations

import random

from repro.ecr.schema import Schema


def ladder_orders(
    schemas: list[Schema], seed: int = 0, samples: int = 3
) -> dict[str, list[Schema]]:
    """A few representative integration orders.

    * ``given`` — the order the schemas were listed in (the paper's tool:
      the DDA picks);
    * ``alphabetical`` — by schema name;
    * ``largest_first`` / ``smallest_first`` — by structure count, merging
      the big (respectively small) schemas early;
    * ``shuffled_<i>`` — ``samples`` random orders for variance bars.
    """
    orders: dict[str, list[Schema]] = {
        "given": list(schemas),
        "alphabetical": sorted(schemas, key=lambda schema: schema.name),
        "largest_first": sorted(schemas, key=lambda schema: -len(schema)),
        "smallest_first": sorted(schemas, key=lambda schema: len(schema)),
    }
    rng = random.Random(seed)
    for index in range(samples):
        shuffled = list(schemas)
        rng.shuffle(shuffled)
        orders[f"shuffled_{index}"] = shuffled
    return orders
