"""The from-scratch rebuild oracle incremental evolution is pinned to.

:meth:`AnalysisSession.apply_edit
<repro.equivalence.session.AnalysisSession.apply_edit>` repairs the
equivalence registry, the assertion networks and the memoized matrices
*locally* — only the cells an edit touches are recomputed.  The oracle
here takes the expensive road instead: serialize the edited session's
canonical :meth:`state_payload
<repro.equivalence.session.AnalysisSession.state_payload>`, build a
**fresh** session from it (re-adding every schema, re-declaring every
equivalence class, re-specifying every surviving assertion), and
fingerprint both.  Because the payload is history-independent, the two
fingerprints must be bitwise identical — any divergence means a repair
step forgot or corrupted state.

The same trick pins patched integration results:
:func:`reintegrate_from_scratch` runs a cold :class:`Integrator
<repro.integration.integrator.Integrator>` over the rebuilt session and
returns the result schema's fingerprint for comparison against the
incrementally patched result.
"""

from __future__ import annotations

import hashlib
import json
from typing import TYPE_CHECKING

from repro.assertions.kinds import AssertionKind, Source
from repro.ecr.json_io import schema_from_dict

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.equivalence.session import AnalysisSession


def state_payload_fingerprint(session: "AnalysisSession") -> str:
    """SHA-256 over the canonical, history-independent state payload."""
    canonical = json.dumps(
        session.state_payload(), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def session_from_payload(payload: dict) -> "AnalysisSession":
    """A fresh session replaying a canonical ``state_payload`` dict.

    Schemas are re-added (which re-seeds the implicit IS-A assertions),
    equivalence classes re-declared through their sorted anchor member,
    and every surviving specified assertion re-specified with its
    original source and note.  The input payload must describe a
    consistent session — it came from one.
    """
    from repro.equivalence.session import AnalysisSession

    fresh = AnalysisSession()
    for schema_dict in payload["schemas"]:
        fresh.add_schema(schema_from_dict(schema_dict))
    for members in payload["equivalences"]:
        anchor, *rest = members
        for other in rest:
            fresh.declare_equivalent(anchor, other)
    for entry in payload["assertions"]:
        fresh.specify(
            entry["first"],
            entry["second"],
            AssertionKind.from_code(entry["kind"]),
            relationships=entry["relationships"],
            source=Source[entry["source"]],
            note=entry["note"],
        )
    return fresh


def rebuild_session(session: "AnalysisSession") -> "AnalysisSession":
    """The oracle: a cold session holding the live session's state."""
    return session_from_payload(session.state_payload())


def rebuild_matches(session: "AnalysisSession") -> tuple[str, str]:
    """(live fingerprint, rebuilt fingerprint) — equal iff repair was sound."""
    live = state_payload_fingerprint(session)
    rebuilt = state_payload_fingerprint(rebuild_session(session))
    return live, rebuilt


def reintegrate_from_scratch(
    session: "AnalysisSession",
    first_schema: str,
    second_schema: str,
    *,
    result_name: str = "integrated",
    options=None,
) -> str:
    """Fingerprint of a cold integration over the rebuilt session.

    A patched :class:`~repro.integration.results.IntegrationResult` must
    fingerprint identically — patching may only skip work, never change
    the answer.
    """
    from repro.integration.integrator import Integrator
    from repro.integration.options import IntegrationOptions
    from repro.kernel.apply import schema_fingerprint

    rebuilt = rebuild_session(session)
    integrator = Integrator(
        rebuilt.registry,
        rebuilt.object_network,
        rebuilt.relationship_network,
        options if options is not None else IntegrationOptions(),
    )
    result = integrator.integrate(first_schema, second_schema, result_name)
    return schema_fingerprint(result.schema)


__all__ = [
    "rebuild_matches",
    "rebuild_session",
    "reintegrate_from_scratch",
    "session_from_payload",
    "state_payload_fingerprint",
]
