"""Global schema design: federate two hospital databases.

The second integration context of the paper's introduction: the admissions
database and the outpatient clinic database already exist; we design one
global schema over them and then route global requests to the component
databases through the generated mappings.

Run:  python examples/hospital_federation.py
"""

from repro import ascii_diagram, parse_request
from repro.integration import integrate_all
from repro.query.rewrite import rewrite_to_components, rewrite_to_integrated
from repro.workloads.domains import (
    build_hospital_admissions,
    build_hospital_clinic,
    hospital_ground_truth,
)


def main() -> None:
    admissions = build_hospital_admissions()
    clinic = build_hospital_clinic()
    print("=== The existing component databases ===")
    print(ascii_diagram(admissions))
    print(ascii_diagram(clinic))

    result, mappings = integrate_all(
        [admissions, clinic], hospital_ground_truth(), result_name="hospital"
    )
    print("=== The global schema ===")
    print(ascii_diagram(result.schema))

    print("=== Routing global requests to the component databases ===")
    staff_node = mappings["adm"].map_object("Physician")
    for text in (
        f"select D_Name from {staff_node}",
        "select Name, Birth_date from Person",
        "select Name from Patient where Insurance = ACME",
    ):
        request = parse_request(text)
        print(f"\nglobal request : {request}")
        for leg in rewrite_to_components(request, mappings):
            print(f"  routed to {leg}")

    print("\n=== The other direction: a departmental view request ===")
    view_request = parse_request("select Name from Patient")
    print("admissions view request:", view_request)
    print(
        "against the global schema:",
        rewrite_to_integrated(view_request, mappings["adm"]),
    )


if __name__ == "__main__":
    main()
