"""An operational federation: the engine answering global requests.

Goes beyond schema-level integration: populates the paper's sc1 and sc2
with instances and drives the **federated query engine**
(:mod:`repro.federation`) against them — concurrent fan-out to the
component databases, merge strategy derived from the Screen 8
assertions, and graceful degradation when a component misbehaves.  A
deliberately *flaky* sc2 (injected latency and faults) shows the retry
loop absorbing transient errors and the partial-result mode answering
from the live components when sc2 finally dies.

The sequential reference semantics (``repro.data.federated_answer``) run
alongside as the oracle: on every healthy query the engine returns
exactly the same rows.

Run:  python examples/operational_federation.py
"""

from repro.assertions import AssertionNetwork
from repro.data import federated_answer
from repro.data.instances import InstanceStore
from repro.ecr.schema import ObjectRef
from repro.federation import (
    ExecutionPolicy,
    FederationEngine,
    FlakyBackend,
    InstanceBackend,
    SqliteBackend,
)
from repro.integration import Integrator, build_mappings
from repro.obs.metrics import MetricsRegistry
from repro.workloads.university import (
    PAPER_RELATIONSHIP_CODES,
    paper_assertions,
    paper_registry,
)


def build_integration():
    registry = paper_registry()
    network = paper_assertions(registry)
    relationship_network = AssertionNetwork()
    for schema in registry.schemas():
        for relationship in schema.relationship_sets():
            relationship_network.add_object(
                ObjectRef(schema.name, relationship.name)
            )
    for first, second, code in PAPER_RELATIONSHIP_CODES:
        relationship_network.specify(
            ObjectRef.parse(first), ObjectRef.parse(second), code
        )
    result = Integrator(registry, network, relationship_network).integrate(
        "sc1", "sc2"
    )
    return registry, network, result, build_mappings(result, registry.schemas())


def build_stores(registry):
    """Overlapping component databases: "ana" lives in both."""
    sc1_store = InstanceStore(registry.schema("sc1"))
    sc2_store = InstanceStore(registry.schema("sc2"))
    ana = sc1_store.insert("Student", {"Name": "ana", "GPA": 3.8})
    sc1_store.insert("Student", {"Name": "bob", "GPA": 2.9})
    cs = sc1_store.insert("Department", {"Name": "cs"})
    sc1_store.connect(
        "Majors", {"Student": ana, "Department": cs}, {"Since": "1986-09-01"}
    )
    sc2_store.insert(
        "Grad_student", {"Name": "ana", "GPA": 3.8, "Support_type": "ta"}
    )
    sc2_store.insert("Faculty", {"Name": "prof_x", "Rank": "full"})
    sc2_store.insert("Department", {"Name": "cs", "Location": "west"})
    return {"sc1": sc1_store, "sc2": sc2_store}


def main() -> None:
    registry, network, result, mappings = build_integration()
    stores = build_stores(registry)

    print("=== healthy federation (engine vs sequential oracle) ===")
    engine = FederationEngine.for_stores(
        mappings, stores, result.schema, object_network=network
    )
    for text in (
        "select D_Name, Location from E_Department",
        "select D_Name, D_GPA from Student",
        "select D_Name, D_GPA, Support_type from Student",
    ):
        res = engine.query(text)
        oracle = federated_answer(
            res.plan.request, mappings, stores, result.schema
        )
        print(f"global request : {text}")
        print(f"  strategy     : {res.plan.strategy}")
        print(f"  rows         : {res.rows}")
        print(f"  equals oracle: {res.rows == oracle}")

    print("\n=== the plan, explained ===")
    print(engine.explain("select D_Name, D_GPA, Support_type from Student"))

    print("\n=== a flaky component: retries absorb transient faults ===")
    metrics = MetricsRegistry()
    flaky = FederationEngine.for_backends(
        mappings,
        {
            "sc1": InstanceBackend(stores["sc1"]),
            # sqlite via the relational translation, wrapped in fault
            # injection: ~8 ms latency, first two calls fail outright
            "sc2": FlakyBackend(
                SqliteBackend.from_store(stores["sc2"]),
                latency=0.008,
                fail_first=2,
                seed=42,
            ),
        },
        result.schema,
        object_network=network,
        policy=ExecutionPolicy(retries=2, backoff=0.01),
        metrics=metrics,
    )
    res = flaky.query("select D_Name, D_GPA from Student")
    print("health :", res.health.summary())
    print("retries:", metrics.counter("federation.retries").value)
    print("rows   :", res.rows)

    print("\n=== a dead component: partial results, not an exception ===")
    dead = FederationEngine.for_backends(
        mappings,
        {
            "sc1": InstanceBackend(stores["sc1"]),
            "sc2": FlakyBackend(InstanceBackend(stores["sc2"]), down=True),
        },
        result.schema,
        object_network=network,
        policy=ExecutionPolicy(retries=1, backoff=0.005),
    )
    res = dead.query("select D_Name, D_GPA, Support_type from Student")
    print("degraded:", res.degraded)
    print("health  :", res.health.summary())
    print("rows    :", res.rows, "(sc1's certain answers; sc2's are missing)")
    # repeated failures open sc2's circuit breaker: it gets skipped
    for _ in range(3):
        dead.query("select D_Name from Student")
    res = dead.query("select D_Name from Student")
    print("breaker :", dead.executor.breaker_for("sc2").state, "->",
          res.health.for_component("sc2").describe())


if __name__ == "__main__":
    main()
