"""An operational federation: real instances, real answers.

Goes beyond schema-level integration: populates the paper's sc1 and sc2
with instances, migrates both databases into the integrated schema through
the generated mappings (merging shared entities by key), and demonstrates
that query answering is preserved in both integration contexts —
view requests against the integrated database, and global requests routed
back to the component databases.

Run:  python examples/operational_federation.py
"""

from repro.assertions import AssertionNetwork
from repro.data import federated_answer, merge_stores, populate_store
from repro.data.instances import InstanceStore
from repro.ecr.schema import ObjectRef
from repro.integration import Integrator, build_mappings
from repro.query import parse_request, rewrite_to_integrated
from repro.workloads.university import (
    PAPER_RELATIONSHIP_CODES,
    paper_assertions,
    paper_registry,
)


def build_integration():
    registry = paper_registry()
    network = paper_assertions(registry)
    relationship_network = AssertionNetwork()
    for schema in registry.schemas():
        for relationship in schema.relationship_sets():
            relationship_network.add_object(
                ObjectRef(schema.name, relationship.name)
            )
    for first, second, code in PAPER_RELATIONSHIP_CODES:
        relationship_network.specify(
            ObjectRef.parse(first), ObjectRef.parse(second), code
        )
    result = Integrator(registry, network, relationship_network).integrate(
        "sc1", "sc2"
    )
    return registry, result, build_mappings(result, registry.schemas())


def main() -> None:
    registry, result, mappings = build_integration()

    # Hand-crafted instances that overlap across the two databases: "ana"
    # is a student in sc1 and a grad student in sc2 — one real person.
    sc1_store = InstanceStore(registry.schema("sc1"))
    sc2_store = InstanceStore(registry.schema("sc2"))
    ana1 = sc1_store.insert("Student", {"Name": "ana", "GPA": 3.8})
    bob = sc1_store.insert("Student", {"Name": "bob", "GPA": 2.9})
    cs1 = sc1_store.insert("Department", {"Name": "cs"})
    sc1_store.connect("Majors", {"Student": ana1, "Department": cs1}, {"Since": "1986-09-01"})
    sc2_store.insert(
        "Grad_student", {"Name": "ana", "GPA": 3.8, "Support_type": "ta"}
    )
    sc2_store.insert("Faculty", {"Name": "prof_x", "Rank": "full"})
    sc2_store.insert("Department", {"Name": "cs", "Location": "west"})

    integrated, _ = merge_stores(
        [(sc1_store, mappings["sc1"]), (sc2_store, mappings["sc2"])],
        result.schema,
    )
    entities, links = integrated.size()
    print(f"merged database: {entities} entities, {links} links")
    print("ana appears once and is a Grad_student:")
    for member in integrated.members("Grad_student"):
        print("  ", member.values)

    print("\n=== view integration context ===")
    view_request = parse_request("select Name, GPA from Student where GPA >= 3.5")
    rewritten = rewrite_to_integrated(view_request, mappings["sc1"])
    print("sc1 view request:", view_request)
    print("on integrated   :", rewritten)
    print("view answers    :", sc1_store.select(view_request))
    print("integrated      :", integrated.select(rewritten))

    print("\n=== federation context ===")
    for text in (
        "select D_Name, Location from E_Department",
        "select D_Name, D_GPA from Student",
    ):
        request = parse_request(text)
        fed = federated_answer(
            request, mappings, {"sc1": sc1_store, "sc2": sc2_store},
            result.schema,
        )
        direct = integrated.select(request)
        print(f"global request : {request}")
        print(f"  federated    : {fed}")
        print(f"  direct       : {direct}")
        print(f"  equal        : {fed == direct}")

    # A larger, generated population: answers stay consistent at scale.
    big_sc1 = populate_store(registry.schema("sc1"), seed=1, entities_per_class=20)
    big_sc2 = populate_store(registry.schema("sc2"), seed=2, entities_per_class=20)
    big, _ = merge_stores(
        [(big_sc1, mappings["sc1"]), (big_sc2, mappings["sc2"])], result.schema
    )
    request = parse_request("select D_Name from Student where D_GPA >= 50")
    fed = federated_answer(
        request, mappings, {"sc1": big_sc1, "sc2": big_sc2}, result.schema
    )
    print(
        f"\nscaled up: merged {big.size()[0]} entities; "
        f"federated == direct: {fed == big.select(request)} "
        f"({len(fed)} qualifying students)"
    )


if __name__ == "__main__":
    main()
