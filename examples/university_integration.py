"""The paper's running example, end to end (Figures 3, 4 and 5).

Builds sc1 and sc2, declares the Screen 7 equivalences, prints the ranked
Screen 8 candidate list, applies the paper's assertions and prints the
integrated schema of Figure 5 with its provenance.

Run:  python examples/university_integration.py
"""

from repro import ascii_diagram, dot_diagram
from repro.assertions.matrix import render_assertion_matrix
from repro.ecr.diagram import side_by_side
from repro.equivalence.ordering import render_screen8_rows
from repro.integration import Integrator, build_mappings
from repro.workloads.university import (
    PAPER_ASSERTION_CODES,
    PAPER_RELATIONSHIP_CODES,
    paper_candidate_pairs,
    paper_registry,
    paper_assertions,
)
from repro.assertions import AssertionNetwork
from repro.ecr.schema import ObjectRef


def main() -> None:
    registry = paper_registry()
    sc1 = registry.schema("sc1")
    sc2 = registry.schema("sc2")

    print("=== Phase 1: the component schemas (Figures 3 and 4) ===")
    print(side_by_side(ascii_diagram(sc1), ascii_diagram(sc2)))

    print("=== Phase 2: ACS and OCS matrices ===")
    print(registry.acs("sc1", "sc2").render())
    print(registry.ocs("sc1", "sc2").render())

    print("=== Phase 3: ranked candidate pairs (Screen 8) ===")
    print(render_screen8_rows(paper_candidate_pairs(registry)))
    print("DDA answers:", [code for *_, code in PAPER_ASSERTION_CODES])

    network = paper_assertions(registry)
    print(render_assertion_matrix(network, sc1, sc2))
    print("derived assertions:")
    for assertion in network.derived_assertions():
        print("  ", assertion)

    relationship_network = AssertionNetwork()
    for schema in (sc1, sc2):
        for relationship in schema.relationship_sets():
            relationship_network.add_object(
                ObjectRef(schema.name, relationship.name)
            )
    for first, second, code in PAPER_RELATIONSHIP_CODES:
        relationship_network.specify(
            ObjectRef.parse(first), ObjectRef.parse(second), code
        )

    print("=== Phase 4: the integrated schema (Figure 5) ===")
    integrator = Integrator(registry, network, relationship_network)
    result = integrator.integrate("sc1", "sc2")
    print(ascii_diagram(result.schema))
    for line in result.log:
        print("  ", line)

    print("\nComponent attributes of Student.D_Name (Screens 12a/12b):")
    for component in result.component_attributes("Student", "D_Name"):
        print("  ", component)

    print("\nMappings generated for each component schema:")
    for name, mapping in build_mappings(result, [sc1, sc2]).items():
        print(f"  {name}: {mapping.objects}")

    print("\nGraphviz DOT of the integrated schema:")
    print(dot_diagram(result.schema))


if __name__ == "__main__":
    main()
