"""Quickstart: integrate two tiny views in a dozen lines.

Run:  python examples/quickstart.py
"""

from repro import (
    AssertionKind,
    AssertionNetwork,
    EquivalenceRegistry,
    Integrator,
    ObjectRef,
    SchemaBuilder,
    ascii_diagram,
)


def main() -> None:
    # Phase 1 — schema collection: two user views in the ECR model.
    payroll = (
        SchemaBuilder("payroll")
        .entity(
            "Employee",
            attrs=[("Ssn", "char", True), ("Name", "char"), ("Salary", "real")],
        )
        .build()
    )
    directory = (
        SchemaBuilder("directory")
        .entity(
            "Person",
            attrs=[("Ssn", "char", True), ("Name", "char"), ("Phone", "char")],
        )
        .build()
    )

    # Phase 2 — schema analysis: declare which attributes mean the same.
    registry = EquivalenceRegistry([payroll, directory])
    registry.declare_equivalent("payroll.Employee.Ssn", "directory.Person.Ssn")
    registry.declare_equivalent("payroll.Employee.Name", "directory.Person.Name")

    # Phase 3 — assertion specification: every employee is a person.
    network = AssertionNetwork()
    network.seed_schema(payroll)
    network.seed_schema(directory)
    network.specify(
        ObjectRef("payroll", "Employee"),
        ObjectRef("directory", "Person"),
        AssertionKind.CONTAINED_IN,
    )

    # Phase 4 — integration.
    result = Integrator(registry, network).integrate("payroll", "directory")

    print(ascii_diagram(result.schema))
    print("Employee became:", result.node_for("payroll.Employee"))
    print(
        "Person's merged name attribute is composed of:",
        ", ".join(
            str(component)
            for component in result.component_attributes("Person", "D_Name")
        ),
    )
    for line in result.log:
        print(" ", line)


if __name__ == "__main__":
    main()
