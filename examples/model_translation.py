"""Schemas from conventional data models entering the pipeline.

The paper's future-work pipeline: a relational and a hierarchical database
are translated into the ECR model (Navathe & Awong 1987), then integrated
like any other component schemas.

Run:  python examples/model_translation.py
"""

from repro import (
    AssertionKind,
    AssertionNetwork,
    EquivalenceRegistry,
    Integrator,
    ObjectRef,
    ascii_diagram,
)
from repro.translate import (
    Column,
    Field,
    ForeignKey,
    HierarchicalSchema,
    RecordType,
    RelationalSchema,
    Table,
    translate_hierarchical,
    translate_relational,
)
from repro.translate import to_relational


def main() -> None:
    relational = RelationalSchema(
        "sqlhr",
        [
            Table(
                "Employee",
                [
                    Column("Eno", "char", True, False),
                    Column("Name", "char"),
                    Column("Dept_no", "char", nullable=False),
                ],
                [ForeignKey(("Dept_no",), "Department")],
            ),
            Table(
                "Department",
                [Column("Dno", "char", True, False), Column("Dname", "char")],
            ),
            Table(
                "Manager",
                [Column("Eno", "char", True, False), Column("Bonus", "real")],
                [ForeignKey(("Eno",), "Employee")],
            ),
        ],
    )
    hierarchical = HierarchicalSchema(
        "imshr",
        [
            RecordType("Division", [Field("Dno", "char", True), Field("Name")]),
            RecordType(
                "Worker",
                [Field("Eno", "char", True), Field("Name")],
                parent="Division",
            ),
        ],
    )

    sql_ecr = translate_relational(relational)
    ims_ecr = translate_hierarchical(hierarchical)
    print("=== Translated component schemas ===")
    print(ascii_diagram(sql_ecr))
    print(ascii_diagram(ims_ecr))

    registry = EquivalenceRegistry([sql_ecr, ims_ecr])
    registry.declare_equivalent("sqlhr.Employee.Eno", "imshr.Worker.Eno")
    registry.declare_equivalent("sqlhr.Employee.Name", "imshr.Worker.Name")
    registry.declare_equivalent("sqlhr.Department.Dno", "imshr.Division.Dno")

    network = AssertionNetwork()
    network.seed_schema(sql_ecr)
    network.seed_schema(ims_ecr)
    network.specify(
        ObjectRef("sqlhr", "Employee"),
        ObjectRef("imshr", "Worker"),
        AssertionKind.EQUALS,
    )
    network.specify(
        ObjectRef("sqlhr", "Department"),
        ObjectRef("imshr", "Division"),
        AssertionKind.EQUALS,
    )

    result = Integrator(registry, network).integrate(
        "sqlhr", "imshr", "company"
    )
    print("=== Integrated schema over both databases ===")
    print(ascii_diagram(result.schema))
    for line in result.log:
        print("  ", line)

    # Outbound: hand the integrated schema to a physical design tool.
    print("=== Physical design: integrated schema back to relational ===")
    physical = to_relational(result.schema)
    for table in physical.tables:
        pk = ", ".join(table.primary_key_columns())
        fks = "; ".join(
            f"FK({', '.join(fk.columns)}) -> {fk.referenced_table}"
            for fk in table.foreign_keys
        )
        print(f"  {table.name}(PK: {pk})" + (f"  {fks}" if fks else ""))


if __name__ == "__main__":
    main()
