"""Replay a full DDA session against the interactive tool.

Drives the menu/form interface through all six main-menu tasks exactly as
a DDA at a terminal would, and prints a selection of the rendered screens
(the paper's Screens 1, 3, 7, 8, 10, 11 and 12).

For a live session run ``ecr-integrate`` (or ``python -m repro.tool.app``)
instead.

Run:  python examples/interactive_tool_replay.py
"""

from repro.tool import run_script

SCRIPT = [
    # Task 1: define sc1 and sc2 through the collection screens
    "1",
    "A sc1",
    "A Student e", "A Name char y", "A GPA real n", "E",
    "A Department e", "A Name char y", "E",
    "A Majors r", "A Student 1,1", "A Department 0,n", "E",
    "A Since date n", "E",
    "E",
    "A sc2",
    "A Grad_student e", "A Name char y", "A GPA real n",
    "A Support_type char n", "E",
    "A Faculty e", "A Name char y", "A Rank char n", "E",
    "A Department e", "A Name char y", "A Location char n", "E",
    "A Majors r", "A Grad_student 1,1", "A Department 0,n", "E",
    "A Since date n", "E",
    "A Works r", "A Faculty 1,1", "A Department 1,n", "E",
    "A Percent_time real n", "E",
    "E",
    "E",
    # Task 2: attribute equivalences (Screen 7)
    "2", "sc1 sc2",
    "Student Grad_student", "A Name Name", "A GPA GPA", "E",
    "Student Faculty", "A Name Name", "E",
    "Department Department", "A Name Name", "E",
    "E",
    # Task 4: relationship attribute equivalences
    "4", "Majors Majors", "A Since Since", "E", "E",
    # Task 3: object assertions (Screen 8): 1, 3, 4
    "3", "1", "3", "4", "E",
    # Task 5: relationship assertions
    "5", "1", "E",
    # Task 6: integrate and browse (Screens 10-12)
    "6",
    "Student c", "q",
    "Student a", "D_Name", "n", "q", "q",
    "x",
    "E",
]

SHOWCASE = [
    "Main Menu",
    "Structure Information Collection Screen",
    "Equivalence Class Creation and Deletion Screen",
    "Assertion Collection For Object Pairs",
    "Object Class Screen",
    "Category Screen",
    "Component Attribute Screen",
]


def main() -> None:
    app, _ = run_script(SCRIPT)
    shown: set[str] = set()
    for frame in app.frames:
        for title in SHOWCASE:
            if title in frame and title not in shown:
                shown.add(title)
                print(frame)
                print("=" * 80)
    result = app.session.result
    print("final integrated schema:", result.schema.summary())


if __name__ == "__main__":
    main()
