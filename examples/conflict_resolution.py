"""The Screen 9 scenario: a derived assertion conflicts with a new one.

sc3 has an Instructor entity set; sc4 has Student with a Grad_student
category.  The DDA asserts Instructor ⊆ Grad_student; together with the
schema's own Grad_student ⊆ Student, the tool derives Instructor ⊆ Student.
When the DDA later claims Instructor and Student are disjoint, the tool
rejects the assertion and shows the derivation chain — then we repair it
the way the paper suggests ("change earlier assertion in line 3, possibly
to a '0' or '5', realizing that all instructors are not grad_students").

Run:  python examples/conflict_resolution.py
"""

from repro import AssertionNetwork, ConflictError, ObjectRef
from repro.assertions.conflicts import render_screen9
from repro.workloads.university import build_sc3, build_sc4


def main() -> None:
    sc3, sc4 = build_sc3(), build_sc4()
    network = AssertionNetwork()
    network.seed_schema(sc3)
    network.seed_schema(sc4)

    instructor = ObjectRef("sc3", "Instructor")
    grad = ObjectRef("sc4", "Grad_student")
    student = ObjectRef("sc4", "Student")

    print("DDA asserts: Instructor 'contained in' Grad_student (code 2)")
    network.specify(instructor, grad, 2)
    for assertion in network.derived_assertions():
        print("tool derives:", assertion)

    print("\nDDA asserts: Instructor and Student are disjoint (code 0) ...")
    try:
        network.specify(instructor, student, 0)
    except ConflictError as conflict:
        print(render_screen9(conflict.report))

    print("Repair: change the earlier assertion to 5 ('may be integratable')")
    network.respecify(instructor, grad, 5)
    print("Retry the new assertion ...")
    try:
        network.specify(instructor, student, 0)
        print("still rejected?! (should not happen)")
    except ConflictError:
        # Instructor overlapping Grad_student ⊆ Student still forces
        # Instructor ∩ Student != empty — disjointness remains impossible.
        print(
            "still inconsistent: an instructor who may be a grad student "
            "is necessarily sometimes a student."
        )

    print("\nSecond repair: make Instructor and Grad_student disjoint (0)")
    network.respecify(instructor, grad, 0)
    network.specify(instructor, student, 0)
    print("accepted.  final assertions:")
    for assertion in network.all_assertions():
        print("  ", assertion)


if __name__ == "__main__":
    main()
