PYTHON ?= python
PYTHONPATH := src

.PHONY: test test-deprecations trace-smoke fed-smoke bench-smoke kernel-smoke crash-smoke service-smoke telemetry-smoke solver-smoke evolution-smoke replica-smoke serve bench example

## Tier-1: the full unit/integration/e2e suite.
test:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest -x -q

## Same suite with DeprecationWarning promoted to an error: proves every
## in-repo caller is off the deprecated surfaces (direct matrix
## construction).  The repro.instrumentation shim and positional option
## arguments completed their deprecation cycles and are gone — imports /
## positional use are plain errors now (the latter covered by
## tests/integration/test_keyword_shims.py).
test-deprecations:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest -q -W error::DeprecationWarning

## Observability smoke: run the EXP-CLO workload with tracing enabled and
## fail if any instrumented phase (1-4 or the tool screens) emits zero
## spans.  See docs/OBSERVABILITY.md.
trace-smoke:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) benchmarks/record_obs.py --smoke

## Federation smoke: record BENCH_federation.json and gate on it — fails
## if concurrent fan-out is not >= 2x the sequential baseline on 8
## components, or if fault injection leaks an unhandled exception.
## See docs/FEDERATION.md.
fed-smoke:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) benchmarks/record_federation.py

## Quick benchmark smoke: the closure and equivalence-screen workloads,
## then the counter recording to BENCH_incremental.json.
bench-smoke:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest -q \
		benchmarks/bench_exp_closure.py \
		benchmarks/bench_screens_equivalence.py \
		--benchmark-disable-gc --benchmark-warmup=off
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) benchmarks/record_incremental.py

## Kernel smoke: record BENCH_kernel.json and gate on it — fails if the
## per-event bus overhead exceeds 5% of the incremental-propagation
## baseline, or if restoring the paper world from a snapshot takes more
## than 50 ms.  See docs/ARCHITECTURE.md.
kernel-smoke:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) benchmarks/record_kernel.py

## Durability smoke: the crash-anywhere property tests, then record
## BENCH_durability.json and gate on it — fails if journalling one
## committed transaction costs more than 5% of the incremental baseline,
## or if recovering the paper world (save + WAL tail) takes more than
## 50 ms.  See docs/DURABILITY.md.
crash-smoke:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest -q \
		tests/kernel/test_crash_anywhere.py tests/faults
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) benchmarks/record_durability.py

## Service smoke: the multi-tenant HTTP service tests, then record
## BENCH_service.json and gate on it — fails unless >= 16 concurrent
## tenants complete the full lifecycle with zero failed requests, the
## residency bound forces real eviction/rehydration churn, and p99
## request latency stays under the ceiling.  See docs/SERVICE.md.
service-smoke:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest -q tests/service
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) benchmarks/record_service.py --smoke

## Telemetry smoke: boot a real server, strictly parse a /v1/metrics
## scrape, then drive a background integration while consuming both SSE
## streams (kernel events + tracer spans) over live sockets — fails on
## malformed exposition, zero streamed items, or a lost X-Request-Id.
## Results land under the telemetry_smoke key of BENCH_obs.json.
## See docs/OBSERVABILITY.md.
telemetry-smoke:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) benchmarks/telemetry_smoke.py

## Solver smoke: the solver test suite (fixpoint-vs-oracle properties,
## QuickXplain minimality, suggestion ranking), then record
## BENCH_solver.json and gate on it — fails unless the batch fixpoint
## matches the incremental closure on conflict-free workloads, every
## planted contradiction is caught with a verified-minimal conflict
## set, and a planted true equivalence ranks in the suggestion top 3.
## See docs/SOLVER.md.
solver-smoke:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest -q \
		tests/solver tests/workloads/test_conflict_generator.py
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) benchmarks/record_solver.py

## Evolution smoke: the typed-edit suite (verb semantics, rebuild-oracle
## properties, scripted traffic), then record BENCH_evolution.json and
## gate on it — fails unless one edit's repair recomputes at most 10%
## of the OCS cells and propagation steps a from-scratch rebuild pays,
## and exactly the cached plans touching the edited class are dropped.
## See docs/EVOLUTION.md.
evolution-smoke:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest -q \
		tests/evolution tests/workloads/test_evolution_script.py
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) benchmarks/record_evolution.py

## Replication smoke: the WAL-shipping suite (shipper/applier parity,
## service routing + failover, the replication chaos property), then
## record BENCH_replication.json and gate on it — fails unless
## steady-state lag p99 <= 250ms, promotion-to-first-served-read <= 1s,
## and a crash-scheduled chaos run observes zero divergent
## fingerprints.  See docs/REPLICATION.md.
replica-smoke:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest -q \
		tests/replication tests/obs/test_replication_gauges.py \
		tests/workloads/test_traffic.py
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) benchmarks/record_replication.py --smoke

## Run the integration service locally (demo token demo:demo-token).
serve:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.service \
		--root var/service --token demo:demo-token

## The full experiment harness (slow).
bench:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest -q benchmarks -s

## The paper's running example, end to end.
example:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) examples/university_integration.py
